//! Inverse thermal dependence (ITD, Fig. 8).
//!
//! Undervolting faults are retention/timing failures whose margins improve
//! with temperature, so a hotter die shows *fewer* faults — the opposite of
//! most reliability folklore and one of the paper's headline observations.
//! Modeled as a linear shift of every cell's effective threshold.

use crate::params::FaultParams;

/// Signed shift added to every `vfail` at temperature `t_c`, in mV.
/// Above the calibration reference the shift is negative (thresholds drop,
/// faults disappear); below it, positive. The per-platform slope is a
/// ROADMAP calibration item (Fig. 8's two pins).
#[must_use]
pub fn itd_shift_mv(params: &FaultParams, t_c: f64) -> f64 {
    -params.itd_mv_per_c * (t_c - params.t_ref_c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvf_fpga::PlatformKind;

    #[test]
    fn hotter_die_lowers_thresholds() {
        let p = FaultParams::for_platform(PlatformKind::Vc707);
        assert_eq!(itd_shift_mv(&p, p.t_ref_c), 0.0);
        assert!(itd_shift_mv(&p, 80.0) < 0.0);
        assert!(itd_shift_mv(&p, 0.0) > 0.0);
    }

    #[test]
    fn slope_magnitude_gives_fig8_scale_reduction() {
        // 50 → 80 °C must shrink rates by ~3× (Fig. 8): the threshold shift
        // over 30 °C divided by tau is the log of that factor.
        let p = FaultParams::for_platform(PlatformKind::Vc707);
        let shift = itd_shift_mv(&p, 50.0) - itd_shift_mv(&p, 80.0);
        let factor = (shift / p.tau_mv).exp();
        assert!((2.0..6.0).contains(&factor), "thermal factor {factor}");
    }
}
