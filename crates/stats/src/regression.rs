//! Ordinary least squares over `(x, y)` pairs.
//!
//! One estimator, used for Fig. 8: regress fault rate against die
//! temperature and pin the sign (and rough magnitude) of the slope. Kept
//! general — the campaign code also fits log-rates, where the inverse
//! thermal dependence `rate ∝ exp(−k·T)` becomes exactly linear.

use crate::describe::mean;

/// A fitted line `y = slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinFit {
    pub slope: f64,
    pub intercept: f64,
    /// Coefficient of determination; `1.0` when the residuals vanish
    /// (including the degenerate all-`y`-equal case).
    pub r2: f64,
    /// Standard error of the slope (`0` when `n <= 2`).
    pub slope_stderr: f64,
    pub n: usize,
}

/// Least-squares fit. `None` on length mismatch, fewer than two points,
/// or zero variance in `x` (vertical line).
#[must_use]
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Option<LinFit> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len();
    let x_bar = mean(xs);
    let y_bar = mean(ys);
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxx += (x - x_bar) * (x - x_bar);
        sxy += (x - x_bar) * (y - y_bar);
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = y_bar - slope * x_bar;
    let mut ss_res = 0.0;
    let mut ss_tot = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let r = y - (slope * x + intercept);
        ss_res += r * r;
        ss_tot += (y - y_bar) * (y - y_bar);
    }
    let r2 = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        1.0
    };
    let slope_stderr = if n > 2 {
        (ss_res / (n - 2) as f64 / sxx).sqrt()
    } else {
        0.0
    };
    Some(LinFit {
        slope,
        intercept,
        r2,
        slope_stderr,
        n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_is_recovered() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        let fit = linear_fit(&xs, &ys).unwrap();
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.intercept - 1.0).abs() < 1e-12);
        assert!((fit.r2 - 1.0).abs() < 1e-12);
        assert!(fit.slope_stderr < 1e-9);
    }

    #[test]
    fn hand_computed_scatter_fixture() {
        // xs = 1..4, ys = [2,4,5,8]: Sxx = 5, Sxy = 9.5 ⇒ slope 1.9,
        // intercept 0, SSres = 0.7, SStot = 18.75 ⇒ r² = 1 − 0.7/18.75.
        let fit = linear_fit(&[1.0, 2.0, 3.0, 4.0], &[2.0, 4.0, 5.0, 8.0]).unwrap();
        assert!((fit.slope - 1.9).abs() < 1e-12);
        assert!(fit.intercept.abs() < 1e-12);
        assert!((fit.r2 - (1.0 - 0.7 / 18.75)).abs() < 1e-12);
        assert!((fit.slope_stderr - (0.7 / 2.0 / 5.0f64).sqrt()).abs() < 1e-12);
        assert_eq!(fit.n, 4);
    }

    #[test]
    fn negative_slopes_come_out_negative() {
        let xs = [0.0, 25.0, 50.0, 80.0];
        let ys: Vec<f64> = xs
            .iter()
            .map(|x: &f64| (-0.04 * x).exp() * 1000.0)
            .collect();
        let fit = linear_fit(&xs, &ys).unwrap();
        assert!(fit.slope < 0.0);
        // Log-space is exactly linear for the exponential law.
        let log_ys: Vec<f64> = ys.iter().map(|y| y.ln()).collect();
        let log_fit = linear_fit(&xs, &log_ys).unwrap();
        assert!((log_fit.slope + 0.04).abs() < 1e-12);
        assert!((log_fit.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_are_refused() {
        assert!(linear_fit(&[1.0], &[2.0]).is_none());
        assert!(linear_fit(&[1.0, 2.0], &[2.0]).is_none());
        assert!(linear_fit(&[3.0, 3.0, 3.0], &[1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    fn constant_y_yields_flat_line_with_unit_r2() {
        let fit = linear_fit(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.intercept, 5.0);
        assert_eq!(fit.r2, 1.0);
    }

    #[test]
    fn fits_are_bit_identical_across_reruns() {
        let xs: Vec<f64> = (0..50).map(f64::from).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| 3.0 * x - 7.0 + (x * 12.9898).sin())
            .collect();
        let a = linear_fit(&xs, &ys).unwrap();
        let b = linear_fit(&xs, &ys).unwrap();
        assert_eq!(a.slope.to_bits(), b.slope.to_bits());
        assert_eq!(a.r2.to_bits(), b.r2.to_bits());
    }
}
