//! `uvf-stats` — the statistical estimators behind the paper's Fig. 5–8
//! analyses, implemented from first principles because the build
//! environment is offline (no `statrs`/`linfa`; see the workspace
//! manifest).
//!
//! The crate is *near-leaf*: pure math over slices, no I/O. Its only
//! workspace dependency is `uvf_fpga::seedmix` for the shared SplitMix64
//! stream (one PRNG implementation to audit, pinned bit-identical to the
//! private copy this crate used to carry). `uvf-characterize` wires these
//! estimators to fault-model data (per-BRAM fault rates, die-location
//! histograms, temperature campaigns) and `uvf-trace` events.
//!
//! Every estimator honors the workspace determinism contract: given the
//! same inputs (and, for k-means, the same seed) the result is
//! bit-identical across calls, processes and thread counts — nothing in
//! here reads a clock or ambient randomness.
//!
//! * [`kmeans`] — seeded 1-D k-means++ with Lloyd iterations and
//!   silhouette-based `k` selection (Fig. 5's vulnerability clusters),
//! * [`chi2`] — Pearson χ² goodness-of-fit with a real p-value via the
//!   regularized incomplete gamma function (Figs. 6–7 location
//!   non-uniformity),
//! * [`regression`] — ordinary least squares over `(x, y)` pairs (Fig. 8's
//!   inverse thermal slope),
//! * [`describe`] — the shared scalar summaries (mean, variance, median).

#![deny(deprecated)]

pub mod chi2;
pub mod describe;
pub mod kmeans;
pub mod regression;
mod rng;

pub use chi2::{chi2_gof, chi2_uniform, gamma_q, ln_gamma, Chi2};
pub use describe::{mean, median, population_variance};
pub use kmeans::{kmeans_1d, select_k, silhouette_1d, KMeans, KSelection};
pub use regression::{linear_fit, LinFit};
