//! Tiny deterministic PRNG for the k-means++ seeding draws.
//!
//! SplitMix64 again — the same generator the fault model uses — but
//! implemented locally so the crate stays a leaf. The stream is a pure
//! function of the caller-provided seed, which is what makes clustering
//! reproducible: same data + same seed ⇒ bit-identical assignments.

pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(7);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(7);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = SplitMix64::new(8);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn floats_stay_in_unit_interval() {
        let mut r = SplitMix64::new(42);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
