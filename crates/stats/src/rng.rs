//! Tiny deterministic PRNG for the k-means++ seeding draws.
//!
//! SplitMix64 again — the exact generator the rest of the workspace
//! mixes with, re-exported from `uvf_fpga::seedmix` so there is a single
//! implementation to audit. The stream is a pure function of the
//! caller-provided seed, which is what makes clustering reproducible:
//! same data + same seed ⇒ bit-identical assignments.

pub use uvf_fpga::seedmix::SplitMix64;

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression pin: the k-means++ draws must keep the exact stream the
    /// crate produced when it carried a private SplitMix64 copy. These
    /// words were captured from that implementation before the dedup.
    #[test]
    fn stream_is_bit_identical_to_the_historical_private_impl() {
        let mut r = SplitMix64::new(7);
        assert_eq!(r.next_u64(), 0x63cb_e1e4_5932_0dd7);
        assert_eq!(r.next_u64(), 0x044c_3cd7_f43c_661c);
        assert_eq!(r.next_u64(), 0xe698_4080_bab1_2a02);
        assert_eq!(r.next_u64(), 0x953a_eb70_673e_29cb);
    }

    #[test]
    fn stream_is_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(7);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(7);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = SplitMix64::new(8);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn floats_stay_in_unit_interval() {
        let mut r = SplitMix64::new(42);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
