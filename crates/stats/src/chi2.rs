//! Pearson χ² goodness-of-fit with a real p-value.
//!
//! The paper's Figs. 6–7 claim fault locations are *not* uniform across
//! the die; turning that claim into a gate needs the χ² statistic *and*
//! its tail probability. The p-value is the regularized upper incomplete
//! gamma function `Q(df/2, χ²/2)`, computed the classic way: Lanczos
//! log-gamma, the series expansion of `P(a, x)` for `x < a + 1` and the
//! Lentz continued fraction for `Q(a, x)` above it.

/// Result of one goodness-of-fit test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Chi2 {
    /// Pearson statistic `Σ (observed − expected)² / expected`.
    pub statistic: f64,
    /// Degrees of freedom (`bins − 1`).
    pub df: usize,
    /// Right-tail probability of the statistic under H₀.
    pub p_value: f64,
}

impl Chi2 {
    /// Does the test reject the null hypothesis at significance `alpha`?
    #[must_use]
    pub fn rejects_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// χ² test of `observed` against the uniform distribution over its bins.
/// `None` with fewer than two bins or an all-zero histogram.
#[must_use]
pub fn chi2_uniform(observed: &[u64]) -> Option<Chi2> {
    let expected = vec![1.0; observed.len()];
    chi2_gof(observed, &expected)
}

/// χ² test of `observed` against `expected` bin weights. The weights are
/// relative — they are rescaled so their sum matches the observed total —
/// which is what lets callers pass raw site counts per die column as the
/// null model. `None` on length mismatch, fewer than two bins, an
/// all-zero histogram, or a non-positive weight.
#[must_use]
pub fn chi2_gof(observed: &[u64], expected: &[f64]) -> Option<Chi2> {
    if observed.len() != expected.len() || observed.len() < 2 {
        return None;
    }
    // NaN weights fall to the `is_finite` arm.
    if expected.iter().any(|&e| e <= 0.0 || !e.is_finite()) {
        return None;
    }
    let total = observed.iter().sum::<u64>() as f64;
    if total == 0.0 {
        return None;
    }
    let weight_sum: f64 = expected.iter().sum();
    let mut statistic = 0.0;
    for (&o, &w) in observed.iter().zip(expected) {
        let e = total * w / weight_sum;
        let d = o as f64 - e;
        statistic += d * d / e;
    }
    let df = observed.len() - 1;
    Some(Chi2 {
        statistic,
        df,
        p_value: gamma_q(df as f64 / 2.0, statistic / 2.0),
    })
}

/// Natural log of the gamma function for `x > 0` (Lanczos, g = 7).
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    // The published Lanczos(g = 7) coefficients, kept digit-for-digit.
    #[allow(clippy::excessive_precision)]
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_59,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection keeps the function total on (0, ∞).
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + 7.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized upper incomplete gamma `Q(a, x) = Γ(a, x)/Γ(a)` for
/// `a > 0`; the χ² right-tail probability is `Q(df/2, x/2)`.
#[must_use]
pub fn gamma_q(a: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

const EPS: f64 = 1e-15;
const TINY: f64 = 1e-300;
const MAX_TERMS: usize = 500;

/// Series for the lower regularized gamma, valid for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut ap = a;
    for _ in 0..MAX_TERMS {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Modified Lentz continued fraction for the upper regularized gamma,
/// valid for `x >= a + 1`.
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_TERMS {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_closed_forms() {
        assert!((ln_gamma(1.0)).abs() < 1e-12);
        assert!((ln_gamma(2.0)).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn chi2_df2_tail_is_exactly_exponential() {
        // For df = 2, Q(1, x/2) = e^{-x/2} in closed form.
        for &x in &[0.5, 2.0, 5.991, 13.0] {
            let p = gamma_q(1.0, x / 2.0);
            assert!((p - (-x / 2.0f64).exp()).abs() < 1e-12, "x = {x}");
        }
    }

    #[test]
    fn critical_value_landmarks() {
        // Textbook χ² critical values at α = 0.05 and 0.01.
        let cases = [
            (1, 3.841, 0.05),
            (2, 5.991, 0.05),
            (5, 11.070, 0.05),
            (10, 18.307, 0.05),
            (5, 15.086, 0.01),
        ];
        for (df, stat, alpha) in cases {
            let p = gamma_q(f64::from(df) / 2.0, stat / 2.0);
            assert!((p - alpha).abs() < 5e-4, "df {df} stat {stat}: p = {p}");
        }
    }

    #[test]
    fn series_and_continued_fraction_agree_at_the_crossover() {
        for df in [1usize, 3, 8, 50] {
            let a = df as f64 / 2.0;
            let x = a + 1.0;
            let below = 1.0 - gamma_p_series(a, x - 1e-9);
            let above = gamma_q_cf(a, x + 1e-9);
            assert!((below - above).abs() < 1e-8, "df {df}: {below} vs {above}");
        }
    }

    #[test]
    fn uniform_histogram_statistic_is_zero() {
        let got = chi2_uniform(&[25, 25, 25, 25]).unwrap();
        assert_eq!(got.statistic, 0.0);
        assert_eq!(got.df, 3);
        assert_eq!(got.p_value, 1.0);
        assert!(!got.rejects_at(0.05));
    }

    #[test]
    fn hand_computed_two_bin_fixture() {
        // observed [10, 20], expected 15 each: χ² = 2·25/15 = 10/3.
        let got = chi2_uniform(&[10, 20]).unwrap();
        assert!((got.statistic - 10.0 / 3.0).abs() < 1e-12);
        assert_eq!(got.df, 1);
        assert!(
            got.p_value > 0.05 && got.p_value < 0.10,
            "p = {}",
            got.p_value
        );
    }

    #[test]
    fn weighted_expectation_rescales() {
        // Observed exactly proportional to the weights ⇒ statistic 0.
        let got = chi2_gof(&[10, 30], &[0.25, 0.75]).unwrap();
        assert_eq!(got.statistic, 0.0);
    }

    #[test]
    fn gross_nonuniformity_rejects_hard() {
        let got = chi2_uniform(&[1000, 0, 0, 0]).unwrap();
        assert!(got.rejects_at(0.01));
        assert!(got.p_value < 1e-100, "p = {}", got.p_value);
    }

    #[test]
    fn invalid_inputs_are_refused() {
        assert!(chi2_uniform(&[5]).is_none());
        assert!(chi2_uniform(&[0, 0, 0]).is_none());
        assert!(chi2_gof(&[1, 2], &[1.0]).is_none());
        assert!(chi2_gof(&[1, 2], &[1.0, 0.0]).is_none());
        assert!(chi2_gof(&[1, 2], &[1.0, -3.0]).is_none());
    }

    #[test]
    fn p_values_are_bit_identical_across_reruns() {
        let a = chi2_uniform(&[3, 14, 15, 92, 65, 35]).unwrap();
        let b = chi2_uniform(&[3, 14, 15, 92, 65, 35]).unwrap();
        assert_eq!(a.statistic.to_bits(), b.statistic.to_bits());
        assert_eq!(a.p_value.to_bits(), b.p_value.to_bits());
    }
}
