//! Seeded 1-D k-means with silhouette-based `k` selection.
//!
//! Fig. 5 of the paper groups BRAMs by fault rate into vulnerability
//! classes; the inputs here are therefore one-dimensional (one rate per
//! BRAM). The implementation is the classic k-means++ seeding followed by
//! Lloyd iterations, with every tie broken by lowest index so the result
//! is a pure function of `(points, k, seed)`.

use crate::rng::SplitMix64;

/// Upper bound on Lloyd iterations; 1-D runs converge in a handful.
const MAX_ITERATIONS: usize = 100;

/// A converged clustering. Clusters are relabeled by ascending centroid,
/// so cluster `0` is always the least-faulty group — stable, meaningful
/// ids independent of seeding order.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeans {
    pub k: usize,
    /// Cluster centers, ascending.
    pub centroids: Vec<f64>,
    /// Cluster id per input point.
    pub assignments: Vec<usize>,
    /// Points per cluster. A size can be `0` on degenerate inputs (fewer
    /// distinct values than `k`); the empty cluster keeps its seeded
    /// centroid.
    pub sizes: Vec<usize>,
    /// Sum of squared distances to the assigned centroid.
    pub inertia: f64,
    pub iterations: usize,
}

/// Deterministic k-means++ / Lloyd on 1-D data. `None` when `k == 0` or
/// there are fewer points than clusters.
#[must_use]
pub fn kmeans_1d(points: &[f64], k: usize, seed: u64) -> Option<KMeans> {
    if k == 0 || points.len() < k {
        return None;
    }
    let mut centroids = seed_plusplus(points, k, seed);
    let mut assignments = vec![0usize; points.len()];
    let mut iterations = 0;
    for iter in 1..=MAX_ITERATIONS {
        iterations = iter;
        let mut changed = false;
        for (i, &p) in points.iter().enumerate() {
            let c = nearest(&centroids, p);
            if assignments[i] != c {
                assignments[i] = c;
                changed = true;
            }
        }
        let mut sums = vec![0.0f64; k];
        let mut counts = vec![0usize; k];
        for (i, &p) in points.iter().enumerate() {
            sums[assignments[i]] += p;
            counts[assignments[i]] += 1;
        }
        for c in 0..k {
            // An empty cluster keeps its old centroid; with fewer distinct
            // values than clusters this is the stable fixpoint.
            if counts[c] > 0 {
                centroids[c] = sums[c] / counts[c] as f64;
            }
        }
        if !changed && iter > 1 {
            break;
        }
    }
    relabel(points, centroids, assignments, k, iterations)
}

/// k-means++ seeding: first center uniform, then each next center drawn
/// with probability proportional to squared distance from the chosen set.
fn seed_plusplus(points: &[f64], k: usize, seed: u64) -> Vec<f64> {
    let mut rng = SplitMix64::new(seed);
    let n = points.len();
    let first = (rng.next_f64() * n as f64) as usize;
    let mut centroids = vec![points[first.min(n - 1)]];
    let mut d2: Vec<f64> = points.iter().map(|&p| sq(p - centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total > 0.0 {
            let mut r = rng.next_f64() * total;
            let mut chosen = n - 1;
            for (i, &w) in d2.iter().enumerate() {
                if r < w {
                    chosen = i;
                    break;
                }
                r -= w;
            }
            chosen
        } else {
            // All remaining mass sits on already-chosen values: any index
            // works, take the lowest for determinism.
            0
        };
        let c = points[next];
        centroids.push(c);
        for (i, &p) in points.iter().enumerate() {
            let d = sq(p - c);
            if d < d2[i] {
                d2[i] = d;
            }
        }
    }
    centroids
}

fn sq(x: f64) -> f64 {
    x * x
}

/// Index of the nearest centroid; ties go to the lowest index.
fn nearest(centroids: &[f64], p: f64) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (c, &center) in centroids.iter().enumerate() {
        let d = sq(p - center);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    best
}

/// Sort clusters by ascending centroid (index tie-break) and remap ids.
fn relabel(
    points: &[f64],
    centroids: Vec<f64>,
    assignments: Vec<usize>,
    k: usize,
    iterations: usize,
) -> Option<KMeans> {
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by(|&a, &b| centroids[a].total_cmp(&centroids[b]).then(a.cmp(&b)));
    let mut remap = vec![0usize; k];
    for (new, &old) in order.iter().enumerate() {
        remap[old] = new;
    }
    let centroids: Vec<f64> = order.iter().map(|&old| centroids[old]).collect();
    let assignments: Vec<usize> = assignments.into_iter().map(|a| remap[a]).collect();
    let mut sizes = vec![0usize; k];
    let mut inertia = 0.0;
    for (i, &p) in points.iter().enumerate() {
        sizes[assignments[i]] += 1;
        inertia += sq(p - centroids[assignments[i]]);
    }
    Some(KMeans {
        k,
        centroids,
        assignments,
        sizes,
        inertia,
        iterations,
    })
}

/// Mean silhouette coefficient of a labeled 1-D clustering, in `[-1, 1]`.
/// Singleton-cluster points score `0` (Rousseeuw's convention), as does
/// everything when no second non-empty cluster exists.
#[must_use]
pub fn silhouette_1d(points: &[f64], assignments: &[usize], k: usize) -> f64 {
    assert_eq!(points.len(), assignments.len());
    let n = points.len();
    if n == 0 || k < 2 {
        return 0.0;
    }
    let mut sizes = vec![0usize; k];
    for &a in assignments {
        sizes[a] += 1;
    }
    let mut total = 0.0;
    for i in 0..n {
        let own = assignments[i];
        if sizes[own] <= 1 {
            continue; // s(i) = 0
        }
        // Mean |x_i - x_j| per cluster, one pass over the data.
        let mut dist_sum = vec![0.0f64; k];
        for j in 0..n {
            if i != j {
                dist_sum[assignments[j]] += (points[i] - points[j]).abs();
            }
        }
        let a = dist_sum[own] / (sizes[own] - 1) as f64;
        let mut b = f64::INFINITY;
        for c in 0..k {
            if c != own && sizes[c] > 0 {
                b = b.min(dist_sum[c] / sizes[c] as f64);
            }
        }
        if b.is_finite() {
            let denom = a.max(b);
            if denom > 0.0 {
                total += (b - a) / denom;
            }
        }
    }
    total / n as f64
}

/// Outcome of a silhouette scan over candidate cluster counts.
#[derive(Debug, Clone, PartialEq)]
pub struct KSelection {
    /// Clustering at the winning `k`.
    pub best: KMeans,
    /// Its mean silhouette.
    pub silhouette: f64,
    /// Every candidate tried, as `(k, silhouette)` in ascending `k`.
    pub scores: Vec<(usize, f64)>,
}

/// Try `k = 2..=max_k` (capped at `points.len()`), score each converged
/// clustering by mean silhouette, and keep the best (smallest `k` on
/// ties). `None` when fewer than 3 points or `max_k < 2`.
#[must_use]
pub fn select_k(points: &[f64], max_k: usize, seed: u64) -> Option<KSelection> {
    if points.len() < 3 || max_k < 2 {
        return None;
    }
    let max_k = max_k.min(points.len());
    let mut best: Option<(KMeans, f64)> = None;
    let mut scores = Vec::new();
    for k in 2..=max_k {
        let Some(run) = kmeans_1d(points, k, seed) else {
            continue;
        };
        let s = silhouette_1d(points, &run.assignments, k);
        scores.push((k, s));
        let better = match &best {
            None => true,
            Some((_, best_s)) => s > *best_s,
        };
        if better {
            best = Some((run, s));
        }
    }
    best.map(|(best, silhouette)| KSelection {
        best,
        silhouette,
        scores,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const TWO_GROUPS: [f64; 6] = [0.0, 0.1, 0.2, 10.0, 10.1, 10.2];

    #[test]
    fn closed_form_two_groups() {
        let got = kmeans_1d(&TWO_GROUPS, 2, 1).unwrap();
        assert_eq!(got.assignments, [0, 0, 0, 1, 1, 1]);
        assert!((got.centroids[0] - 0.1).abs() < 1e-12);
        assert!((got.centroids[1] - 10.1).abs() < 1e-12);
        assert_eq!(got.sizes, [3, 3]);
        // Inertia: the four outer points sit 0.1 from their centroid.
        assert!((got.inertia - 4.0 * 0.01).abs() < 1e-9);
    }

    #[test]
    fn centroids_are_ascending_for_any_seed() {
        for seed in 0..20 {
            let got = kmeans_1d(&TWO_GROUPS, 2, seed).unwrap();
            assert!(got.centroids.windows(2).all(|w| w[0] <= w[1]));
            assert_eq!(got.assignments, [0, 0, 0, 1, 1, 1], "seed {seed}");
        }
    }

    #[test]
    fn reruns_are_bit_identical() {
        let points: Vec<f64> = (0..200)
            .map(|i| f64::from(i % 17) * 3.7 + f64::from(i % 5))
            .collect();
        let a = kmeans_1d(&points, 4, 99).unwrap();
        let b = kmeans_1d(&points, 4, 99).unwrap();
        assert_eq!(a, b);
        let bits = |r: &KMeans| -> Vec<u64> { r.centroids.iter().map(|c| c.to_bits()).collect() };
        assert_eq!(bits(&a), bits(&b));
    }

    #[test]
    fn degenerate_inputs_are_total() {
        assert!(kmeans_1d(&[1.0, 2.0], 3, 0).is_none());
        assert!(kmeans_1d(&[1.0], 0, 0).is_none());
        // Fewer distinct values than clusters still converges.
        let same = [5.0; 8];
        let got = kmeans_1d(&same, 3, 7).unwrap();
        assert_eq!(got.sizes.iter().sum::<usize>(), 8);
        assert_eq!(got.inertia, 0.0);
    }

    #[test]
    fn silhouette_is_high_for_tight_separated_groups() {
        let run = kmeans_1d(&TWO_GROUPS, 2, 3).unwrap();
        let s = silhouette_1d(&TWO_GROUPS, &run.assignments, 2);
        assert!(s > 0.95, "silhouette {s}");
        // Splitting a tight group hurts the score.
        let run3 = kmeans_1d(&TWO_GROUPS, 3, 3).unwrap();
        let s3 = silhouette_1d(&TWO_GROUPS, &run3.assignments, 3);
        assert!(s3 < s, "s3 {s3} >= s2 {s}");
    }

    #[test]
    fn select_k_recovers_the_generating_group_count() {
        let sel2 = select_k(&TWO_GROUPS, 6, 11).unwrap();
        assert_eq!(sel2.best.k, 2);
        let three: Vec<f64> = [0.0, 0.2, 5.0, 5.2, 11.0, 11.2, 0.1, 5.1, 11.1].to_vec();
        let sel3 = select_k(&three, 6, 11).unwrap();
        assert_eq!(sel3.best.k, 3);
        assert_eq!(sel3.scores.len(), 5, "k = 2..=6 all tried");
    }

    #[test]
    fn select_k_rejects_undersized_inputs() {
        assert!(select_k(&[1.0, 2.0], 4, 0).is_none());
        assert!(select_k(&TWO_GROUPS, 1, 0).is_none());
    }
}
