//! Scalar summaries shared by the estimators.

/// Arithmetic mean; `0.0` for an empty slice.
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance (divides by `n`, not `n - 1`); `0.0` when fewer
/// than two points.
#[must_use]
pub fn population_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Median by sorting a copy (total order via `f64::total_cmp`); the mean
/// of the two middle elements for even lengths, `0.0` when empty.
#[must_use]
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_fixtures() {
        assert_eq!(mean(&[1.0, 2.0, 3.0, 4.0]), 2.5);
        assert_eq!(
            population_variance(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]),
            4.0
        );
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
    }

    #[test]
    fn degenerate_inputs_are_total() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(population_variance(&[]), 0.0);
        assert_eq!(population_variance(&[5.0]), 0.0);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[7.0]), 7.0);
    }
}
